// Tests for the trace log and the stat/latency accumulators.

#include <gtest/gtest.h>

#include "src/locus/system.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"

namespace locus {
namespace {

TEST(TraceLog, RecordsFormattedMessages) {
  TraceLog log;
  log.Log(Milliseconds(5), "site0", "value=%d name=%s", 42, "x");
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].time, Milliseconds(5));
  EXPECT_EQ(log.records()[0].origin, "site0");
  EXPECT_EQ(log.records()[0].message, "value=42 name=x");
}

TEST(TraceLog, DisabledLogRecordsNothing) {
  TraceLog log;
  log.set_enabled(false);
  log.Log(0, "x", "dropped");
  EXPECT_TRUE(log.records().empty());
}

TEST(TraceLog, CountContaining) {
  TraceLog log;
  log.Log(0, "a", "txn committed");
  log.Log(0, "b", "txn aborted");
  log.Log(0, "c", "txn committed again");
  EXPECT_EQ(log.CountContaining("committed"), 2);
  EXPECT_EQ(log.CountContaining("nothing"), 0);
  log.Clear();
  EXPECT_EQ(log.CountContaining("committed"), 0);
}

TEST(StatRegistry, AddGetReset) {
  StatRegistry stats;
  EXPECT_EQ(stats.Get("x"), 0);
  stats.Add("x");
  stats.Add("x", 4);
  EXPECT_EQ(stats.Get("x"), 5);
  stats.Reset();
  EXPECT_EQ(stats.Get("x"), 0);
}

// The reconciliation counters are interned at kernel start, so they appear in
// the counter export (with zero values) even before any fault occurs — dash
// boards and the bench JSON can rely on the keys being present.
TEST(StatRegistry, SurfacesReconciliationCounters) {
  System system(2);
  auto counters = system.stats().counters();
  for (const char* key : {"recon.catchup_pages", "recon.stale_reads_blocked",
                          "recon.reintegrations", "recon.stale_marks",
                          "recon.duplicate_propagations_dropped",
                          "recon.gap_quarantines"}) {
    ASSERT_TRUE(counters.count(key)) << key;
    EXPECT_EQ(counters.at(key), 0) << key;
  }
}

// The formation counters (src/form) are interned when each site's queue is
// constructed — formation on or off — so the bench JSON and dashboards can
// rely on every form.* key being present, reading zero on a formation-off
// run instead of missing.
TEST(StatRegistry, SurfacesFormationCounters) {
  System system(2);
  auto counters = system.stats().counters();
  for (const char* key :
       {"form.enqueued", "form.batches", "form.batch_messages", "form.batch_bytes",
        "form.flushes_size", "form.flushes_deadline", "form.messages_per_txn",
        "form.log_forces_per_txn"}) {
    ASSERT_TRUE(counters.count(key)) << key;
    EXPECT_EQ(counters.at(key), 0) << key;
  }
}

// The serializability certifier (src/serial) interns its counters at System
// construction — certifier on or off — so serial.* keys are always present
// in the export, reading zero on an uncertified run instead of missing.
TEST(StatRegistry, SurfacesSerialCounters) {
  System system(2);
  auto counters = system.stats().counters();
  for (const char* key :
       {"serial.txns_certified", "serial.edges", "serial.cycles",
        "serial.checks", "serial.violations"}) {
    ASSERT_TRUE(counters.count(key)) << key;
    EXPECT_EQ(counters.at(key), 0) << key;
  }
}

// The protocol auditor interns its counters at System construction even when
// disabled, so audit.checks / audit.violations are always present in the
// export — a run with the auditor off reads as zero, not as a missing key.
TEST(StatRegistry, SurfacesAuditCounters) {
  System system(1);
  auto counters = system.stats().counters();
  for (const char* key : {"audit.checks", "audit.violations"}) {
    ASSERT_TRUE(counters.count(key)) << key;
    EXPECT_EQ(counters.at(key), 0) << key;
  }
  SystemOptions options;
  options.audit = true;
  System audited(1, options);
  audited.Spawn(0, "w", [](Syscalls& sys) {
    ASSERT_EQ(sys.Creat("/f"), Err::kOk);
    auto fd = sys.Open("/f", {.read = true, .write = true});
    ASSERT_TRUE(fd.ok());
    ASSERT_EQ(sys.WriteString(fd.value, "audited"), Err::kOk);
    ASSERT_EQ(sys.Close(fd.value), Err::kOk);
  });
  audited.Run();
  EXPECT_GT(audited.stats().Get("audit.checks"), 0);
  EXPECT_EQ(audited.stats().Get("audit.violations"), 0);
}

TEST(LatencyStat, TracksMinMaxMean) {
  LatencyStat stat;
  EXPECT_EQ(stat.count(), 0);
  EXPECT_DOUBLE_EQ(stat.MeanMs(), 0.0);
  stat.Add(Milliseconds(10));
  stat.Add(Milliseconds(20));
  stat.Add(Milliseconds(30));
  EXPECT_EQ(stat.count(), 3);
  EXPECT_EQ(stat.min(), Milliseconds(10));
  EXPECT_EQ(stat.max(), Milliseconds(30));
  EXPECT_DOUBLE_EQ(stat.MeanMs(), 20.0);
}

}  // namespace
}  // namespace locus
