// Lock-list semantics: the Figure 1 compatibility matrix, retained locks
// (rules 1 and 2 of section 3.3), non-transaction locks (section 3.4), and
// upgrade/downgrade/extend/contract behaviour (section 3.2).

#include "src/lock/lock_list.h"

#include <gtest/gtest.h>

#include <tuple>

namespace locus {
namespace {

const TxnId kT1{0, 0, 1};
const TxnId kT2{0, 0, 2};

LockOwner Proc(Pid pid) { return LockOwner{pid, kNoTxn}; }
LockOwner Txn(Pid pid, const TxnId& t) { return LockOwner{pid, t}; }

// --- Figure 1: the full compatibility matrix, exhaustively parameterized ---

struct MatrixCase {
  LockMode held;
  LockMode acting;
  AccessAllowed expected;
};

class CompatibilityMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(CompatibilityMatrix, MatchesFigure1) {
  const MatrixCase& c = GetParam();
  EXPECT_EQ(CompatibleAccess(c.held, c.acting), c.expected)
      << LockModeName(c.held) << " vs " << LockModeName(c.acting);
}

INSTANTIATE_TEST_SUITE_P(
    Figure1, CompatibilityMatrix,
    ::testing::Values(
        // Unix row: r/w with Unix, read under Shared, nothing under Exclusive.
        MatrixCase{LockMode::kUnix, LockMode::kUnix, AccessAllowed::kReadWrite},
        MatrixCase{LockMode::kShared, LockMode::kUnix, AccessAllowed::kReadOnly},
        MatrixCase{LockMode::kExclusive, LockMode::kUnix, AccessAllowed::kNone},
        // Shared row.
        MatrixCase{LockMode::kUnix, LockMode::kShared, AccessAllowed::kReadWrite},
        MatrixCase{LockMode::kShared, LockMode::kShared, AccessAllowed::kReadOnly},
        MatrixCase{LockMode::kExclusive, LockMode::kShared, AccessAllowed::kNone},
        // Exclusive row.
        MatrixCase{LockMode::kUnix, LockMode::kExclusive, AccessAllowed::kReadWrite},
        MatrixCase{LockMode::kShared, LockMode::kExclusive, AccessAllowed::kNone},
        MatrixCase{LockMode::kExclusive, LockMode::kExclusive, AccessAllowed::kNone}));

TEST(LocksCompatible, OnlySharedShared) {
  EXPECT_TRUE(LocksCompatible(LockMode::kShared, LockMode::kShared));
  EXPECT_FALSE(LocksCompatible(LockMode::kShared, LockMode::kExclusive));
  EXPECT_FALSE(LocksCompatible(LockMode::kExclusive, LockMode::kShared));
  EXPECT_FALSE(LocksCompatible(LockMode::kExclusive, LockMode::kExclusive));
}

// --- Owner identity ---

TEST(LockOwner, TransactionMembersAreInterchangeable) {
  EXPECT_TRUE(Txn(1, kT1).SameAs(Txn(2, kT1)));
  EXPECT_FALSE(Txn(1, kT1).SameAs(Txn(1, kT2)));
}

TEST(LockOwner, ProcessNeverConflictsWithItself) {
  // Pre-transaction personal locks vs the same process inside a transaction.
  EXPECT_TRUE(Proc(7).SameAs(Txn(7, kT1)));
  EXPECT_FALSE(Proc(7).SameAs(Proc(8)));
  EXPECT_FALSE(Proc(7).SameAs(Txn(8, kT1)));
}

// --- Grants, conflicts, upgrades ---

TEST(LockList, SharedLocksCoexistExclusiveDoesNot) {
  LockList list;
  ASSERT_TRUE(list.CanGrant({0, 10}, Proc(1), LockMode::kShared));
  list.Grant({0, 10}, Proc(1), LockMode::kShared, false);
  EXPECT_TRUE(list.CanGrant({0, 10}, Proc(2), LockMode::kShared));
  EXPECT_FALSE(list.CanGrant({0, 10}, Proc(2), LockMode::kExclusive));
  EXPECT_FALSE(list.CanGrant({5, 10}, Proc(2), LockMode::kExclusive));
  EXPECT_TRUE(list.CanGrant({10, 10}, Proc(2), LockMode::kExclusive));
}

TEST(LockList, UpgradeOwnLockDespiteSelf) {
  LockList list;
  list.Grant({0, 10}, Proc(1), LockMode::kShared, false);
  EXPECT_TRUE(list.CanGrant({0, 10}, Proc(1), LockMode::kExclusive));
  list.Grant({0, 10}, Proc(1), LockMode::kExclusive, false);
  EXPECT_TRUE(list.Holds({0, 10}, Proc(1), LockMode::kExclusive));
  // One entry only: the old shared entry was replaced.
  EXPECT_EQ(list.entries().size(), 1u);
}

TEST(LockList, UpgradeBlockedByOtherSharedHolder) {
  LockList list;
  list.Grant({0, 10}, Proc(1), LockMode::kShared, false);
  list.Grant({0, 10}, Proc(2), LockMode::kShared, false);
  EXPECT_FALSE(list.CanGrant({0, 10}, Proc(1), LockMode::kExclusive));
}

TEST(LockList, ContractionLeavesRemainderHeld) {
  LockList list;
  list.Grant({0, 100}, Proc(1), LockMode::kExclusive, false);
  // Contract to [0,50) by re-granting a shared lock there and unlocking tail.
  list.Unlock({50, 50}, Proc(1));
  EXPECT_TRUE(list.Holds({0, 50}, Proc(1), LockMode::kExclusive));
  EXPECT_FALSE(list.Holds({0, 100}, Proc(1), LockMode::kExclusive));
  EXPECT_TRUE(list.CanGrant({50, 50}, Proc(2), LockMode::kExclusive));
}

TEST(LockList, HoldsAcrossMultipleEntries) {
  LockList list;
  list.Grant({0, 10}, Proc(1), LockMode::kExclusive, false);
  list.Grant({10, 10}, Proc(1), LockMode::kExclusive, false);
  EXPECT_TRUE(list.Holds({5, 10}, Proc(1), LockMode::kExclusive));
  EXPECT_FALSE(list.Holds({5, 20}, Proc(1), LockMode::kExclusive));
}

TEST(LockList, ExclusiveSatisfiesSharedHolds) {
  LockList list;
  list.Grant({0, 10}, Proc(1), LockMode::kExclusive, false);
  EXPECT_TRUE(list.Holds({0, 10}, Proc(1), LockMode::kShared));
}

// --- Rule 1: transaction locks are retained on unlock ---

TEST(LockList, TransactionUnlockRetains) {
  LockList list;
  list.Grant({0, 10}, Txn(1, kT1), LockMode::kExclusive, false);
  list.Unlock({0, 10}, Txn(1, kT1));
  ASSERT_EQ(list.entries().size(), 1u);
  EXPECT_TRUE(list.entries()[0].retained);
  // Still blocks others (section 3.1: not available outside the transaction).
  EXPECT_FALSE(list.CanGrant({0, 10}, Proc(2), LockMode::kShared));
  // But any member of the transaction may reacquire.
  EXPECT_TRUE(list.CanGrant({0, 10}, Txn(5, kT1), LockMode::kExclusive));
  list.Grant({0, 10}, Txn(5, kT1), LockMode::kExclusive, false);
  EXPECT_TRUE(list.Holds({0, 10}, Txn(5, kT1), LockMode::kExclusive));
}

TEST(LockList, RetainedEntryNotCountedAsActivelyHeld) {
  LockList list;
  list.Grant({0, 10}, Txn(1, kT1), LockMode::kExclusive, false);
  list.Unlock({0, 10}, Txn(1, kT1));
  EXPECT_FALSE(list.Holds({0, 10}, Txn(1, kT1), LockMode::kExclusive));
}

TEST(LockList, NonTransactionUnlockDrops) {
  LockList list;
  list.Grant({0, 10}, Proc(1), LockMode::kExclusive, false);
  list.Unlock({0, 10}, Proc(1));
  EXPECT_TRUE(list.empty());
  EXPECT_TRUE(list.CanGrant({0, 10}, Proc(2), LockMode::kExclusive));
}

TEST(LockList, PartialUnlockRetainsOnlyOverlap) {
  LockList list;
  list.Grant({0, 100}, Txn(1, kT1), LockMode::kExclusive, false);
  list.Unlock({0, 40}, Txn(1, kT1));
  EXPECT_TRUE(list.Holds({40, 60}, Txn(1, kT1), LockMode::kExclusive));
  EXPECT_FALSE(list.Holds({0, 40}, Txn(1, kT1), LockMode::kExclusive));
  EXPECT_FALSE(list.CanGrant({0, 40}, Proc(2), LockMode::kShared));  // Retained.
}

// --- Section 3.4: non-transaction locks escape two-phase locking ---

TEST(LockList, NonTransactionLockByTransactionDropsOnUnlock) {
  LockList list;
  list.Grant({0, 10}, Txn(1, kT1), LockMode::kExclusive, /*non_transaction=*/true);
  EXPECT_FALSE(list.CanGrant({0, 10}, Proc(2), LockMode::kShared));  // Obeys Figure 1.
  list.Unlock({0, 10}, Txn(1, kT1));
  EXPECT_TRUE(list.empty());  // Not retained: 2PL intentionally violated.
}

// --- Rule 2: locks covering dirty uncommitted records are sticky ---

TEST(LockList, DirtyCoveredLockRetainedEvenAfterUnlock) {
  LockList list;
  list.Grant({0, 10}, Txn(1, kT1), LockMode::kShared, false);
  list.MarkDirtyCovered({0, 10}, Txn(1, kT1));
  list.Unlock({0, 10}, Txn(1, kT1));
  ASSERT_EQ(list.entries().size(), 1u);
  EXPECT_TRUE(list.entries()[0].retained);
  EXPECT_TRUE(list.entries()[0].covers_dirty);
}

TEST(LockList, DirtyFlagSurvivesReacquisition) {
  LockList list;
  list.Grant({0, 10}, Txn(1, kT1), LockMode::kShared, false);
  list.MarkDirtyCovered({0, 10}, Txn(1, kT1));
  list.Grant({0, 10}, Txn(1, kT1), LockMode::kExclusive, false);  // Upgrade.
  ASSERT_EQ(list.entries().size(), 1u);
  EXPECT_TRUE(list.entries()[0].covers_dirty);
}

TEST(LockList, MarkDirtySkipsNonTransactionLocks) {
  LockList list;
  list.Grant({0, 10}, Txn(1, kT1), LockMode::kShared, /*non_transaction=*/true);
  list.MarkDirtyCovered({0, 10}, Txn(1, kT1));
  EXPECT_FALSE(list.entries()[0].covers_dirty);
}

// --- Release ---

TEST(LockList, ReleaseTransactionDropsAllItsEntries) {
  LockList list;
  list.Grant({0, 10}, Txn(1, kT1), LockMode::kExclusive, false);
  list.Grant({20, 10}, Txn(2, kT1), LockMode::kShared, false);
  list.Grant({40, 10}, Txn(3, kT2), LockMode::kShared, false);
  list.ReleaseTransaction(kT1);
  ASSERT_EQ(list.entries().size(), 1u);
  EXPECT_EQ(list.entries()[0].owner.txn, kT2);
}

TEST(LockList, ReleaseProcessKeepsTransactionEntries) {
  LockList list;
  list.Grant({0, 10}, Proc(1), LockMode::kExclusive, false);
  list.Grant({20, 10}, Txn(1, kT1), LockMode::kShared, false);
  list.ReleaseProcess(1);
  ASSERT_EQ(list.entries().size(), 1u);
  EXPECT_EQ(list.entries()[0].owner.txn, kT1);
}

// --- Enforced access (Figure 1 applied to reads/writes) ---

TEST(LockList, EnforcementUnlockedReadersAllowedUnderShared) {
  LockList list;
  list.Grant({0, 10}, Proc(1), LockMode::kShared, false);
  EXPECT_TRUE(list.MayRead({0, 10}, Proc(2)));
  EXPECT_FALSE(list.MayWrite({0, 10}, Proc(2)));
}

TEST(LockList, EnforcementNothingAllowedUnderExclusive) {
  LockList list;
  list.Grant({0, 10}, Proc(1), LockMode::kExclusive, false);
  EXPECT_FALSE(list.MayRead({0, 10}, Proc(2)));
  EXPECT_FALSE(list.MayWrite({0, 10}, Proc(2)));
  EXPECT_TRUE(list.MayRead({10, 10}, Proc(2)));  // Outside the locked range.
  EXPECT_TRUE(list.MayWrite({10, 10}, Proc(2)));
}

TEST(LockList, OwnerAlwaysPassesItsOwnLocks) {
  LockList list;
  list.Grant({0, 10}, Txn(1, kT1), LockMode::kExclusive, false);
  EXPECT_TRUE(list.MayRead({0, 10}, Txn(2, kT1)));   // Same transaction.
  EXPECT_TRUE(list.MayWrite({0, 10}, Txn(2, kT1)));
}

TEST(LockList, SharedHolderCannotWriteBesideAnotherSharedHolder) {
  LockList list;
  list.Grant({0, 10}, Proc(1), LockMode::kShared, false);
  list.Grant({0, 10}, Proc(2), LockMode::kShared, false);
  EXPECT_TRUE(list.MayRead({0, 10}, Proc(1)));
  EXPECT_FALSE(list.MayWrite({0, 10}, Proc(1)));
}

TEST(LockList, ConflictingOwnersReported) {
  LockList list;
  list.Grant({0, 10}, Proc(1), LockMode::kShared, false);
  list.Grant({5, 10}, Proc(2), LockMode::kShared, false);
  auto conflicts = list.ConflictingOwners({0, 20}, Proc(3), LockMode::kExclusive);
  EXPECT_EQ(conflicts.size(), 2u);
}

}  // namespace
}  // namespace locus
