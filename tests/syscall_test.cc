// End-to-end syscall tests on a single- and multi-site cluster: namespace
// operations, file I/O, the record-locking interface of section 3.2, enforced
// locks, and the base single-file commit at close.

#include <gtest/gtest.h>

#include <string>

#include "src/locus/system.h"

namespace locus {
namespace {

std::string Text(const std::vector<uint8_t>& b) { return {b.begin(), b.end()}; }

class SyscallTest : public ::testing::Test {
 protected:
  SyscallTest() : system_(3) {}

  void RunAll() {
    system_.Run();
    EXPECT_EQ(system_.sim().blocked_process_count(), 0) << "workload deadlocked";
  }

  System system_;
};

TEST_F(SyscallTest, MkdirCreatOpenWriteReadRoundTrip) {
  bool done = false;
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    ASSERT_EQ(sys.Mkdir("/data"), Err::kOk);
    ASSERT_EQ(sys.Creat("/data/file"), Err::kOk);
    auto fd = sys.Open("/data/file", {.read = true, .write = true});
    ASSERT_TRUE(fd.ok());
    ASSERT_EQ(sys.WriteString(fd.value, "hello locus"), Err::kOk);
    ASSERT_TRUE(sys.Seek(fd.value, 0).ok());
    auto data = sys.Read(fd.value, 11);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(Text(data.value), "hello locus");
    EXPECT_EQ(sys.Close(fd.value), Err::kOk);
    done = true;
  });
  RunAll();
  EXPECT_TRUE(done);
}

TEST_F(SyscallTest, NamespaceErrors) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    EXPECT_EQ(sys.Creat("/nodir/file"), Err::kExists);  // Parent missing.
    EXPECT_EQ(sys.Mkdir("/d"), Err::kOk);
    EXPECT_EQ(sys.Mkdir("/d"), Err::kExists);
    EXPECT_EQ(sys.Creat("/d/f"), Err::kOk);
    EXPECT_EQ(sys.Creat("/d/f"), Err::kExists);
    EXPECT_EQ(sys.Open("/d/missing", {}).err, Err::kNoEnt);
    EXPECT_EQ(sys.Unlink("/d/f"), Err::kOk);
    EXPECT_EQ(sys.Unlink("/d/f"), Err::kNoEnt);
    EXPECT_EQ(sys.Open("/d/f", {}).err, Err::kNoEnt);
  });
  RunAll();
}

TEST_F(SyscallTest, BadFdAndFlagChecks) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    EXPECT_EQ(sys.Read(42, 10).err, Err::kBadFd);
    EXPECT_EQ(sys.Close(42), Err::kBadFd);
    ASSERT_EQ(sys.Creat("/f"), Err::kOk);
    auto ro = sys.Open("/f", {.read = true, .write = false});
    ASSERT_TRUE(ro.ok());
    EXPECT_EQ(sys.WriteString(ro.value, "nope"), Err::kAccess);
    // Section 3.1 policy: locking requires write access.
    EXPECT_EQ(sys.Lock(ro.value, 10, LockOp::kShared).err, Err::kAccess);
  });
  RunAll();
}

TEST_F(SyscallTest, NonTransactionCommitAtClose) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    ASSERT_EQ(sys.Creat("/f"), Err::kOk);
    auto fd = sys.Open("/f", {.read = true, .write = true});
    ASSERT_EQ(sys.WriteString(fd.value, "committed at close"), Err::kOk);
    ASSERT_EQ(sys.Close(fd.value), Err::kOk);
  });
  RunAll();
  // The storage site's stable state holds the data.
  Kernel& k = system_.kernel(0);
  FileStore* store = k.StoreFor(k.volumes()[0]->id());
  const CatalogEntry* entry = system_.catalog().Lookup("/f");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(store->CommittedSize(entry->replicas[0].file), 18);
}

TEST_F(SyscallTest, RemoteFileAccessIsTransparent) {
  std::string read_back;
  // Writer at site 0 creates the file at its own site; reader runs at site 2.
  system_.Spawn(0, "writer", [&](Syscalls& sys) {
    ASSERT_EQ(sys.Creat("/shared"), Err::kOk);
    auto fd = sys.Open("/shared", {.read = true, .write = true});
    ASSERT_EQ(sys.WriteString(fd.value, "from site zero"), Err::kOk);
    ASSERT_EQ(sys.Close(fd.value), Err::kOk);
    // Now read it from another site.
    auto child = sys.Fork(2, [&](Syscalls& remote) {
      auto rfd = remote.Open("/shared", {});
      ASSERT_TRUE(rfd.ok());
      auto data = remote.Read(rfd.value, 14);
      ASSERT_TRUE(data.ok());
      read_back = Text(data.value);
      remote.Close(rfd.value);
    });
    ASSERT_TRUE(child.ok());
    sys.WaitChildren();
  });
  RunAll();
  EXPECT_EQ(read_back, "from site zero");
}

TEST_F(SyscallTest, RemoteAccessCostsNetworkLatency) {
  SimTime local_elapsed = 0;
  SimTime remote_elapsed = 0;
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    ASSERT_EQ(sys.Creat("/timing"), Err::kOk);
    auto fd = sys.Open("/timing", {.read = true, .write = true});
    sys.WriteString(fd.value, std::string(128, 'x'));
    sys.Close(fd.value);

    auto lfd = sys.Open("/timing", {});
    SimTime t0 = sys.system().sim().Now();
    sys.Read(lfd.value, 64);
    local_elapsed = sys.system().sim().Now() - t0;
    sys.Close(lfd.value);

    auto child = sys.Fork(1, [&](Syscalls& remote) {
      auto rfd = remote.Open("/timing", {});
      SimTime t1 = remote.system().sim().Now();
      remote.Read(rfd.value, 64);
      remote_elapsed = remote.system().sim().Now() - t1;
      remote.Close(rfd.value);
    });
    ASSERT_TRUE(child.ok());
    sys.WaitChildren();
  });
  RunAll();
  // A remote read pays at least a round trip (~16 ms); a local one does not.
  EXPECT_LT(local_elapsed, Milliseconds(8));
  EXPECT_GT(remote_elapsed, Milliseconds(14));
}

TEST_F(SyscallTest, EnforcedLocksDenyConflictingAccess) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    ASSERT_EQ(sys.Creat("/locked"), Err::kOk);
    auto fd = sys.Open("/locked", {.read = true, .write = true});
    sys.WriteString(fd.value, "0123456789");
    sys.Close(fd.value);

    auto holder = sys.Open("/locked", {.read = true, .write = true});
    sys.Seek(holder.value, 0);
    ASSERT_EQ(sys.Lock(holder.value, 5, LockOp::kExclusive).err, Err::kOk);

    auto child = sys.Fork(0, [&](Syscalls& other) {
      auto ofd = other.Open("/locked", {.read = true, .write = true});
      // Reads/writes under the exclusive lock are denied (Figure 1).
      EXPECT_EQ(other.Read(ofd.value, 5).err, Err::kAccess);
      other.Seek(ofd.value, 0);
      EXPECT_EQ(other.WriteString(ofd.value, "XX"), Err::kAccess);
      // Outside the locked range, conventional Unix sharing applies.
      other.Seek(ofd.value, 5);
      EXPECT_TRUE(other.Read(ofd.value, 5).ok());
      // A conflicting lock request with wait=false fails immediately.
      other.Seek(ofd.value, 0);
      EXPECT_EQ(other.Lock(ofd.value, 5, LockOp::kExclusive, {.wait = false}).err,
                Err::kConflict);
      other.Close(ofd.value);
    });
    ASSERT_TRUE(child.ok());
    sys.WaitChildren();
    sys.Close(holder.value);
  });
  RunAll();
}

TEST_F(SyscallTest, SharedLocksAllowConcurrentReaders) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    ASSERT_EQ(sys.Creat("/shared-read"), Err::kOk);
    auto fd = sys.Open("/shared-read", {.read = true, .write = true});
    sys.WriteString(fd.value, "shared data");
    sys.Seek(fd.value, 0);
    ASSERT_EQ(sys.Lock(fd.value, 11, LockOp::kShared).err, Err::kOk);

    auto child = sys.Fork(1, [&](Syscalls& other) {
      auto ofd = other.Open("/shared-read", {.read = true, .write = true});
      EXPECT_EQ(other.Lock(ofd.value, 11, LockOp::kShared).err, Err::kOk);
      EXPECT_TRUE(other.Read(ofd.value, 11).ok());
      // But writing is impossible while another shared lock exists.
      other.Seek(ofd.value, 0);
      EXPECT_EQ(other.WriteString(ofd.value, "X"), Err::kAccess);
      other.Close(ofd.value);
    });
    ASSERT_TRUE(child.ok());
    sys.WaitChildren();
    sys.Close(fd.value);
  });
  RunAll();
}

TEST_F(SyscallTest, QueuedLockGrantedOnRelease) {
  SimTime granted_at = 0;
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    ASSERT_EQ(sys.Creat("/queue"), Err::kOk);
    auto fd = sys.Open("/queue", {.read = true, .write = true});
    sys.WriteString(fd.value, "payload");
    sys.Seek(fd.value, 0);
    ASSERT_EQ(sys.Lock(fd.value, 7, LockOp::kExclusive).err, Err::kOk);

    auto child = sys.Fork(0, [&](Syscalls& waiter) {
      auto wfd = waiter.Open("/queue", {.read = true, .write = true});
      // Queue until the holder unlocks.
      EXPECT_EQ(waiter.Lock(wfd.value, 7, LockOp::kExclusive, {.wait = true}).err, Err::kOk);
      granted_at = waiter.system().sim().Now();
      waiter.Close(wfd.value);
    });
    ASSERT_TRUE(child.ok());
    sys.Compute(Milliseconds(100));  // Hold the lock a while.
    sys.Seek(fd.value, 0);
    ASSERT_EQ(sys.Lock(fd.value, 7, LockOp::kUnlock).err, Err::kOk);
    sys.WaitChildren();
    sys.Close(fd.value);
  });
  RunAll();
  EXPECT_GT(granted_at, Milliseconds(100));
}

TEST_F(SyscallTest, AppendModeLockAndExtend) {
  // Section 3.2: concurrent processes extend a shared log without livelock;
  // each append-mode lock lands at the then-current end of file.
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    ASSERT_EQ(sys.Creat("/log"), Err::kOk);
    for (int i = 0; i < 3; ++i) {
      sys.Fork(i, [](Syscalls& appender) {
        auto fd = appender.Open("/log", {.read = true, .write = true, .append = true});
        ASSERT_TRUE(fd.ok());
        for (int j = 0; j < 4; ++j) {
          auto range = appender.Lock(fd.value, 8, LockOp::kExclusive);
          ASSERT_EQ(range.err, Err::kOk);
          std::string rec = "REC" + std::to_string(range.value.start / 8) + "  \n";
          rec.resize(8, ' ');
          ASSERT_EQ(appender.WriteString(fd.value, rec), Err::kOk);
          appender.Seek(fd.value, range.value.start);
          ASSERT_EQ(appender.Lock(fd.value, 8, LockOp::kUnlock).err, Err::kOk);
        }
        appender.Close(fd.value);
      });
    }
    sys.WaitChildren();
    auto fd = sys.Open("/log", {});
    auto size = sys.FileSize(fd.value);
    EXPECT_EQ(size.value, 96);  // 12 records x 8 bytes, no overlap, no holes.
    sys.Close(fd.value);
  });
  RunAll();
}

TEST_F(SyscallTest, ForkSharesChannelOffsets) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    ASSERT_EQ(sys.Creat("/inherit"), Err::kOk);
    auto fd = sys.Open("/inherit", {.read = true, .write = true});
    sys.WriteString(fd.value, "parent");
    auto child = sys.Fork(0, [fd = fd.value](Syscalls& c) {
      // The child sees the parent's offset (Unix file-table inheritance).
      ASSERT_EQ(c.WriteString(fd, "+child"), Err::kOk);
    });
    ASSERT_TRUE(child.ok());
    sys.WaitChildren();
    sys.Seek(fd.value, 0);
    auto data = sys.Read(fd.value, 12);
    EXPECT_EQ(Text(data.value), "parent+child");
    sys.Close(fd.value);
  });
  RunAll();
}

TEST_F(SyscallTest, MigrationMovesProcessBetweenSites) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    EXPECT_EQ(sys.CurrentSite(), 0);
    ASSERT_EQ(sys.Migrate(2), Err::kOk);
    EXPECT_EQ(sys.CurrentSite(), 2);
    // Syscalls keep working from the new site.
    EXPECT_EQ(sys.Creat("/after-move"), Err::kOk);
    auto fd = sys.Open("/after-move", {.read = true, .write = true});
    EXPECT_TRUE(fd.ok());
    EXPECT_EQ(sys.WriteString(fd.value, "hi"), Err::kOk);
    sys.Close(fd.value);
  });
  RunAll();
  // The file was created at the process's post-migration site.
  const CatalogEntry* entry = system_.catalog().Lookup("/after-move");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->replicas[0].site, 2);
}

TEST_F(SyscallTest, LockRequiresChannelOffsetDiscipline) {
  // Locking interprets the range from the current offset (the paper's
  // Lock(file, length, mode) interface).
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    ASSERT_EQ(sys.Creat("/offsets"), Err::kOk);
    auto fd = sys.Open("/offsets", {.read = true, .write = true});
    sys.WriteString(fd.value, std::string(100, 'x'));
    sys.Seek(fd.value, 25);
    auto r = sys.Lock(fd.value, 10, LockOp::kExclusive);
    ASSERT_EQ(r.err, Err::kOk);
    EXPECT_EQ(r.value, (ByteRange{25, 10}));
    sys.Close(fd.value);
  });
  RunAll();
}


TEST_F(SyscallTest, TruncateShrinksDurably) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    ASSERT_EQ(sys.Creat("/trunc"), Err::kOk);
    auto fd = sys.Open("/trunc", {.read = true, .write = true});
    sys.WriteString(fd.value, std::string(3000, 'x'));  // 3 pages.
    ASSERT_EQ(sys.CommitFile(fd.value), Err::kOk);
    ASSERT_EQ(sys.Truncate(fd.value, 1000), Err::kOk);
    EXPECT_EQ(sys.FileSize(fd.value).value, 1000);
    // Reads beyond the new size return nothing.
    sys.Seek(fd.value, 1000);
    EXPECT_TRUE(sys.Read(fd.value, 100).value.empty());
    // Growing or negative sizes are rejected; so is truncation with
    // uncommitted records on the file.
    EXPECT_EQ(sys.Truncate(fd.value, 5000), Err::kBusy);
    EXPECT_EQ(sys.Truncate(fd.value, -1), Err::kAccess);
    sys.Seek(fd.value, 0);
    sys.WriteString(fd.value, "dirty");
    EXPECT_EQ(sys.Truncate(fd.value, 500), Err::kBusy);
    sys.Close(fd.value);
  });
  RunAll();
}

TEST_F(SyscallTest, TruncateRejectedInsideTransaction) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    ASSERT_EQ(sys.Creat("/t2"), Err::kOk);
    auto fd = sys.Open("/t2", {.read = true, .write = true});
    sys.WriteString(fd.value, "data");
    sys.CommitFile(fd.value);
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    EXPECT_EQ(sys.Truncate(fd.value, 0), Err::kInvalid);
    sys.EndTrans();
    sys.Close(fd.value);
  });
  RunAll();
}

TEST_F(SyscallTest, TruncateFreesPages) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    Volume* volume = sys.system().kernel(0).volumes()[0];
    int32_t free_before = volume->free_page_count();
    ASSERT_EQ(sys.Creat("/t3"), Err::kOk);
    auto fd = sys.Open("/t3", {.read = true, .write = true});
    sys.WriteString(fd.value, std::string(4096, 'y'));
    ASSERT_EQ(sys.CommitFile(fd.value), Err::kOk);
    EXPECT_EQ(volume->free_page_count(), free_before - 4);
    ASSERT_EQ(sys.Truncate(fd.value, 1024), Err::kOk);
    EXPECT_EQ(volume->free_page_count(), free_before - 1);
    sys.Close(fd.value);
  });
  RunAll();
}

TEST_F(SyscallTest, TruncateWorksRemotely) {
  system_.Spawn(0, "mk", [&](Syscalls& sys) {
    ASSERT_EQ(sys.Creat("/remote-trunc"), Err::kOk);
    auto fd = sys.Open("/remote-trunc", {.read = true, .write = true});
    sys.WriteString(fd.value, std::string(2048, 'z'));
    sys.Close(fd.value);
    sys.Fork(2, [](Syscalls& remote) {
      auto rfd = remote.Open("/remote-trunc", {.read = true, .write = true});
      ASSERT_TRUE(rfd.ok());
      EXPECT_EQ(remote.Truncate(rfd.value, 100), Err::kOk);
      EXPECT_EQ(remote.FileSize(rfd.value).value, 100);
      remote.Close(rfd.value);
    });
    sys.WaitChildren();
  });
  RunAll();
}

TEST_F(SyscallTest, ReadDirListsChildren) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    ASSERT_EQ(sys.Mkdir("/dir"), Err::kOk);
    ASSERT_EQ(sys.Creat("/dir/a"), Err::kOk);
    ASSERT_EQ(sys.Creat("/dir/b"), Err::kOk);
    ASSERT_EQ(sys.Mkdir("/dir/sub"), Err::kOk);
    ASSERT_EQ(sys.Creat("/dir/sub/deep"), Err::kOk);
    auto listing = sys.ReadDir("/dir");
    ASSERT_TRUE(listing.ok());
    EXPECT_EQ(listing.value.size(), 3u);  // a, b, sub — not deep.
    EXPECT_EQ(sys.ReadDir("/missing").err, Err::kNoEnt);
    EXPECT_EQ(sys.ReadDir("/dir/a").err, Err::kNotDir);
    // Root listing sees /dir.
    auto root = sys.ReadDir("/");
    ASSERT_TRUE(root.ok());
    bool found = false;
    for (const auto& name : root.value) {
      found = found || name == "/dir";
    }
    EXPECT_TRUE(found);
  });
  RunAll();
}

}  // namespace
}  // namespace locus
