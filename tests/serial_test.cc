// Serializability certifier tests (src/serial): each seeded outcome-violation
// class is detected with a structured, replayable report; clean runs over the
// existing integration-style scenarios certify violation-free; and the
// certifier never perturbs virtual-time results (certifier-on/off runs are
// bit-identical).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/locus/system.h"
#include "src/serial/certifier.h"
#include "src/workload/debit_credit.h"

namespace locus {
namespace {

SystemOptions SerialOn() {
  SystemOptions options;
  options.serial = true;
  return options;
}

// Transaction ids that never went through BeginTrans: the certifier learns of
// them only through the hooks each test drives.
TxnId TxnA() { return TxnId{0, 1, 101}; }
TxnId TxnB() { return TxnId{1, 1, 102}; }

// ---------------------------------------------------------------------------
// Seeded violation class 1: write skew through a lock bypass. Two
// transactions each read the range the other writes (the writes driven
// straight into the FileStore, bypassing the kernel's lock enforcement, so
// 2PL never orders them), then both commit. The resulting rw/rw cycle is
// invisible to any step-level check — both histories are locally clean — and
// only the serialization graph catches it.

TEST(SerialSeededTest, DetectsWriteSkewCycleFromLockBypass) {
  System system(1, SerialOn());
  ASSERT_TRUE(system.serial().enabled());
  SerializabilityCertifier& cert = system.serial();
  FileId file_a, file_b;
  system.Spawn(0, "rogue", [&](Syscalls& sys) {
    FileStore* store = sys.system().kernel(0).StoreFor(0);
    file_a = store->CreateFile();
    file_b = store->CreateFile();
    // Cross reads first (clean: nothing written yet), then the bypassing
    // writes. The OnStoreWrite capture comes from the real storage path.
    cert.OnTxnBegin(TxnA());
    cert.OnTxnBegin(TxnB());
    cert.OnServeRead("site0", file_b, ByteRange{0, 8}, LockOwner{1, TxnA()}, {});
    cert.OnServeRead("site0", file_a, ByteRange{0, 8}, LockOwner{2, TxnB()}, {});
    store->Write(file_a, LockOwner{1, TxnA()}, 0, std::vector<uint8_t>(8, 0xA1));
    store->Write(file_b, LockOwner{2, TxnB()}, 0, std::vector<uint8_t>(8, 0xB2));
  });
  system.Run();
  EXPECT_EQ(cert.violation_count(), 0);

  // Installing A puts the rw edge B -> A in place; installing B closes the
  // cycle A -> B -> A at B's commit point.
  cert.OnCommitPoint("site0", TxnA(), {}, 1);
  EXPECT_EQ(cert.CountKind(SerialKind::kCycle), 0);
  cert.OnCommitPoint("site0", TxnB(), {}, 1);
  EXPECT_EQ(cert.CountKind(SerialKind::kCycle), 1);
  EXPECT_GE(system.stats().Get("serial.violations"), 1);
  EXPECT_GE(system.stats().Get("serial.cycles"), 1);

  // The report names both transactions, closes the trail (first == last),
  // and carries the recent-event trail for replay triage.
  bool found = false;
  for (const SerialReport& r : cert.violations()) {
    if (r.kind != SerialKind::kCycle) {
      continue;
    }
    found = true;
    ASSERT_GE(r.txns.size(), 3u);
    EXPECT_EQ(r.txns.front(), r.txns.back());
    int has_a = 0, has_b = 0;
    for (const TxnId& t : r.txns) {
      has_a += t == TxnA();
      has_b += t == TxnB();
    }
    EXPECT_GE(has_a, 1);
    EXPECT_GE(has_b, 1);
    EXPECT_FALSE(r.trail.empty());
    EXPECT_NE(r.ToString().find("serialization-cycle"), std::string::npos);
  }
  EXPECT_TRUE(found);
  // The terminal sweep reports the same cycle once, not twice.
  cert.Certify();
  EXPECT_EQ(cert.CountKind(SerialKind::kCycle), 1);
}

// ---------------------------------------------------------------------------
// Seeded violation class 2: unrecoverable commit. A reader is served bytes
// another transaction has written but not committed (the storage layer
// reports them in dirty_of_others), then the reader commits while the writer
// is still unresolved — and the writer's later abort makes the committed
// read of never-existing data permanent.

TEST(SerialSeededTest, DetectsDirtyReadCommit) {
  System system(1, SerialOn());
  SerializabilityCertifier& cert = system.serial();
  FileId file{0, 7};
  ByteRange range{0, 16};

  cert.OnTxnBegin(TxnA());
  cert.OnStoreWrite("site0", file, range, LockOwner{1, TxnA()});
  cert.OnTxnBegin(TxnB());
  // The read overlaps A's uncommitted bytes; a lock-discipline bug (or a
  // guard-off cache path) let it through.
  cert.OnServeRead("site0", file, range, LockOwner{2, TxnB()},
                   {{TxnA(), range}});
  EXPECT_EQ(cert.violation_count(), 0);

  cert.OnCommitPoint("site0", TxnB(), {}, 1);
  ASSERT_EQ(cert.CountKind(SerialKind::kRecoverability), 1);
  const SerialReport& r = cert.violations()[0];
  ASSERT_EQ(r.txns.size(), 2u);
  EXPECT_EQ(r.txns[0], TxnB());  // The committed reader...
  EXPECT_EQ(r.txns[1], TxnA());  // ...and its unresolved dirty dependency.
  EXPECT_NE(r.ToString().find("unrecoverable-commit"), std::string::npos);

  // The writer aborting afterwards does not double-report.
  cert.OnAbortDecision("site0", TxnA());
  EXPECT_EQ(cert.CountKind(SerialKind::kRecoverability), 1);
}

// ---------------------------------------------------------------------------
// Seeded violation class 3: external-consistency break via a reordered
// commit observation. Site 0's transaction A reaches its commit point and
// the commit becomes visible at site 1 through a real network message; a
// transaction B that site 1 starts *afterwards* is then served a read that
// predates A's install (a stale version), so the graph orders B before A —
// a serialization order contradicting what the cluster already observed.

TEST(SerialSeededTest, DetectsReorderedCommitObservation) {
  System system(2, SerialOn());
  system.RunFor(Seconds(1));  // Boot both sites.
  SerializabilityCertifier& cert = system.serial();
  FileId file{0, 9};
  ByteRange range{0, 8};

  cert.OnTxnBegin(TxnA());
  cert.OnStoreWrite("site0", file, range, LockOwner{1, TxnA()});

  // The commit's visibility escapes to site 1 (any message carries the
  // vector clock; the certifier only consumes the causality).
  Message msg;
  msg.type = kCommitTxnReq;
  msg.size_bytes = 96;
  msg.payload = CommitTxnRequest{TxnA()};
  system.net().Send(0, 1, std::move(msg));
  system.Run();

  // B begins at site 1 with A's commit in its causal past, yet its read is
  // served from state missing A's write — recorded before A's install.
  cert.OnTxnBegin(TxnB());
  cert.OnServeRead("site1", file, range, LockOwner{2, TxnB()}, {});
  EXPECT_EQ(cert.violation_count(), 0);

  // A's install now orders B before A: external consistency is violated at
  // the moment the rw edge lands.
  cert.OnCommitPoint("site0", TxnA(), {}, 1);
  ASSERT_EQ(cert.CountKind(SerialKind::kExternalConsistency), 1);
  const SerialReport& r = cert.violations()[0];
  ASSERT_EQ(r.txns.size(), 2u);
  EXPECT_EQ(r.txns[0], TxnB());  // Serialized before...
  EXPECT_EQ(r.txns[1], TxnA());  // ...the commit it observably began after.
  EXPECT_NE(r.ToString().find("external-consistency"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Seeded violation class 4: cross-site happens-before race on
// non-transactional kernel shared state — two sites write the same key with
// no message chain ordering the accesses.

TEST(SerialSeededTest, DetectsSharedStateRace) {
  System system(2, SerialOn());
  SerializabilityCertifier& cert = system.serial();
  system.net().StampLocalEvent(0);
  cert.OnSharedAccess("site0", "catalog.entry/shared", true);
  system.net().StampLocalEvent(1);
  cert.OnSharedAccess("site1", "catalog.entry/shared", true);
  ASSERT_EQ(cert.CountKind(SerialKind::kRace), 1);
  const SerialReport& r = cert.violations()[0];
  EXPECT_NE(r.detail.find("catalog.entry/shared"), std::string::npos);
  EXPECT_NE(r.ToString().find("shared-state-race"), std::string::npos);

  // A message chain between the accesses establishes the order: no race.
  SerializabilityCertifier& cert2 = cert;  // Same instance, new key.
  system.net().StampLocalEvent(0);
  cert2.OnSharedAccess("site0", "catalog.entry/ordered", true);
  Message msg;
  msg.type = kCommitTxnReq;
  msg.size_bytes = 32;
  msg.payload = CommitTxnRequest{TxnA()};
  system.net().Send(0, 1, std::move(msg));
  system.Run();
  system.net().StampLocalEvent(1);
  cert2.OnSharedAccess("site1", "catalog.entry/ordered", true);
  EXPECT_EQ(cert2.CountKind(SerialKind::kRace), 1);  // Still just the first.
}

// ---------------------------------------------------------------------------
// Clean runs: the real protocol, certified end to end, must come back
// violation-free with real certification coverage.

void ExpectCleanSerial(System& system) {
  EXPECT_EQ(system.serial().Certify(), 0) << system.serial().Summary();
  EXPECT_GT(system.serial().txns_certified(), 0);
  EXPECT_EQ(system.stats().Get("serial.violations"), 0);
  EXPECT_EQ(system.stats().Get("serial.txns_certified"),
            system.serial().txns_certified());
}

TEST(SerialCleanTest, DebitCreditWorkloadCertifiesClean) {
  SystemOptions options = SerialOn();
  options.audit = true;  // Both observers share the hook fan-out.
  options.seed = 7;
  System system(3, options);
  DebitCreditConfig config;
  config.branches = 3;
  config.tellers = 4;
  config.transfers_per_teller = 8;
  config.seed = 7;
  DebitCreditResults results = DebitCreditWorkload(&system, config).Execute();
  EXPECT_TRUE(results.conserved());
  EXPECT_GT(results.committed, 0);
  EXPECT_EQ(system.audit().violation_count(), 0) << system.audit().Summary();
  ExpectCleanSerial(system);
  EXPECT_GT(system.serial().edge_count(), 0);  // Real conflicts were graphed.
}

TEST(SerialCleanTest, CrashRecoveryCertifiesClean) {
  System system(3, SerialOn());
  system.Spawn(1, "mk", [](Syscalls& sys) {
    ASSERT_EQ(sys.Creat("/money"), Err::kOk);
    auto fd = sys.Open("/money", {.read = true, .write = true});
    ASSERT_TRUE(fd.ok());
    ASSERT_EQ(sys.WriteString(fd.value, "0000000000"), Err::kOk);
    ASSERT_EQ(sys.Close(fd.value), Err::kOk);
  });
  system.RunFor(Seconds(5));

  // Commit a cross-site transaction, then crash the coordinator at the
  // commit point; recovery re-drives phase two.
  bool committed = false;
  system.Spawn(0, "txn", [&](Syscalls& sys) {
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    auto fd = sys.Open("/money", {.read = true, .write = true});
    ASSERT_TRUE(fd.ok());
    ASSERT_EQ(sys.WriteString(fd.value, "1111111111"), Err::kOk);
    sys.Close(fd.value);
    ASSERT_EQ(sys.EndTrans(), Err::kOk);
    committed = true;
    sys.system().CrashSite(0);
  });
  system.RunFor(Seconds(2));
  ASSERT_TRUE(committed);
  system.RebootSite(0);
  system.RunFor(Seconds(5));

  // A mid-transaction coordinator crash aborts cleanly too.
  system.Spawn(0, "doomed", [&](Syscalls& sys) {
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    auto fd = sys.Open("/money", {.read = true, .write = true});
    if (fd.ok()) {
      sys.WriteString(fd.value, "2222222222");
    }
    sys.Compute(Seconds(60));  // Crash hits before EndTrans.
  });
  system.RunFor(Milliseconds(800));
  system.CrashSite(0);
  system.RunFor(Seconds(3));
  system.RebootSite(0);
  system.RunFor(Seconds(5));

  std::string content;
  system.Spawn(2, "rd", [&](Syscalls& sys) {
    for (int attempt = 0; attempt < 20; ++attempt) {
      auto fd = sys.Open("/money", {});
      if (fd.ok()) {
        auto data = sys.Read(fd.value, 10);
        sys.Close(fd.value);
        if (data.ok()) {
          content = std::string(data.value.begin(), data.value.end());
          return;
        }
      }
      sys.Compute(Milliseconds(100));
    }
  });
  system.RunFor(Seconds(10));
  EXPECT_EQ(content, "1111111111");
  ExpectCleanSerial(system);
}

TEST(SerialCleanTest, PartitionReintegrationCertifiesClean) {
  System system(3, SerialOn());
  system.Spawn(0, "mk", [](Syscalls& sys) {
    ASSERT_EQ(sys.Creat("/r", 3), Err::kOk);
    auto fd = sys.Open("/r", {.read = true, .write = true});
    ASSERT_TRUE(fd.ok());
    ASSERT_EQ(sys.WriteString(fd.value, "version 1!"), Err::kOk);
    ASSERT_EQ(sys.Close(fd.value), Err::kOk);
  });
  system.RunFor(Seconds(5));

  system.Partition({{0, 1}, {2}});
  system.RunFor(Seconds(1));
  system.Spawn(0, "wr", [](Syscalls& sys) {
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    auto fd = sys.Open("/r", {.read = true, .write = true});
    ASSERT_TRUE(fd.ok());
    ASSERT_EQ(sys.WriteString(fd.value, "version 2!"), Err::kOk);
    sys.Close(fd.value);
    ASSERT_EQ(sys.EndTrans(), Err::kOk);
  });
  system.RunFor(Seconds(5));
  system.HealPartitions();
  system.RunFor(Seconds(10));  // Reintegration catch-up.

  std::string content;
  system.Spawn(2, "rd", [&](Syscalls& sys) {
    auto fd = sys.Open("/r", {});
    ASSERT_TRUE(fd.ok());
    auto data = sys.Read(fd.value, 10);
    ASSERT_TRUE(data.ok());
    content = std::string(data.value.begin(), data.value.end());
    sys.Close(fd.value);
  });
  system.RunFor(Seconds(5));
  EXPECT_EQ(content, "version 2!");
  ExpectCleanSerial(system);
}

// ---------------------------------------------------------------------------
// The certifier must never perturb the simulation: the same seed produces
// bit-identical virtual results with the certifier (and its vector-clock
// piggyback) on and off.

TEST(SerialCleanTest, CertifierDoesNotPerturbVirtualResults) {
  DebitCreditConfig config;
  config.branches = 2;
  config.tellers = 3;
  config.transfers_per_teller = 6;
  config.seed = 11;

  SystemOptions plain;
  plain.seed = 11;
  System baseline(2, plain);
  DebitCreditResults without = DebitCreditWorkload(&baseline, config).Execute();

  SystemOptions certified = SerialOn();
  certified.seed = 11;
  System observed(2, certified);
  DebitCreditResults with = DebitCreditWorkload(&observed, config).Execute();

  EXPECT_EQ(without.committed, with.committed);
  EXPECT_EQ(without.aborted_attempts, with.aborted_attempts);
  EXPECT_EQ(without.makespan, with.makespan);
  EXPECT_EQ(without.audited_total, with.audited_total);
  EXPECT_EQ(observed.serial().Certify(), 0) << observed.serial().Summary();
}

// Disabled by default: a default-options System interns the counters at zero
// and performs no certification work.

TEST(SerialCleanTest, DisabledByDefaultCostsNothing) {
  System system(1);
  EXPECT_FALSE(system.serial().enabled());
  system.Spawn(0, "w", [](Syscalls& sys) {
    ASSERT_EQ(sys.Creat("/f"), Err::kOk);
    auto fd = sys.Open("/f", {.read = true, .write = true});
    ASSERT_TRUE(fd.ok());
    ASSERT_EQ(sys.WriteString(fd.value, "hello"), Err::kOk);
    ASSERT_EQ(sys.Close(fd.value), Err::kOk);
  });
  system.Run();
  EXPECT_EQ(system.serial().txns_certified(), 0);
  auto counters = system.stats().counters();
  ASSERT_TRUE(counters.count("serial.txns_certified"));
  ASSERT_TRUE(counters.count("serial.violations"));
  EXPECT_EQ(counters.at("serial.txns_certified"), 0);
  EXPECT_EQ(counters.at("serial.violations"), 0);
}

}  // namespace
}  // namespace locus
