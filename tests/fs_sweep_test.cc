// Parameterized property sweeps over the shadow-page commit mechanism:
// page sizes, write patterns, and writer interleavings. Each combination
// must preserve the fundamental invariant — committed state contains exactly
// the committed writers' bytes — and the I/O accounting identities of
// section 6.1.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "src/fs/file_store.h"
#include "src/sim/random.h"

namespace locus {
namespace {

class PageSizeSweep : public ::testing::TestWithParam<int32_t> {
 protected:
  PageSizeSweep() {
    page_size_ = GetParam();
    auto disk = std::make_unique<Disk>(&sim_, &stats_, "d0", 1024, page_size_,
                                       Milliseconds(10));
    volume_ = std::make_unique<Volume>(0, "v0", std::move(disk));
    pool_ = std::make_unique<BufferPool>(128);
    store_ = std::make_unique<FileStore>(&sim_, volume_.get(), pool_.get(), &stats_,
                                         &trace_, "site0");
  }

  void Run(std::function<void()> body) {
    sim_.Spawn("test", std::move(body));
    sim_.Run();
    ASSERT_EQ(sim_.blocked_process_count(), 0);
  }

  LockOwner Owner(uint64_t serial) { return LockOwner{kNoPid, TxnId{0, 0, serial}}; }

  int32_t page_size_ = 0;
  Simulation sim_;
  TraceLog trace_;
  StatRegistry stats_;
  std::unique_ptr<Volume> volume_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<FileStore> store_;
};

TEST_P(PageSizeSweep, CrossBoundaryWritesRoundTrip) {
  Run([&] {
    FileId f = store_->CreateFile();
    // A write straddling three pages.
    std::vector<uint8_t> data(page_size_ * 2 + 7, 0);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(i * 31 + 1);
    }
    int64_t offset = page_size_ - 3;
    store_->Write(f, Owner(1), offset, data);
    store_->CommitWriter(f, Owner(1));
    auto back = store_->Read(f, {offset, static_cast<int64_t>(data.size())});
    EXPECT_EQ(back, data);
    EXPECT_EQ(store_->CommittedSize(f), offset + static_cast<int64_t>(data.size()));
  });
}

TEST_P(PageSizeSweep, DifferencingAcrossPageBoundary) {
  Run([&] {
    FileId f = store_->CreateFile();
    store_->Write(f, Owner(1), 0, std::vector<uint8_t>(page_size_ * 2, '.'));
    store_->CommitWriter(f, Owner(1));
    // Writer A straddles the boundary; writer B sits on each page too.
    std::vector<uint8_t> a_bytes(10, 'A');
    store_->Write(f, Owner(2), page_size_ - 5, a_bytes);
    store_->Write(f, Owner(3), 0, std::vector<uint8_t>(3, 'B'));
    store_->Write(f, Owner(3), page_size_ * 2 - 3, std::vector<uint8_t>(3, 'B'));
    store_->CommitWriter(f, Owner(2));
    // Committed: dots + A's straddle; B's bytes absent.
    const DiskInode* inode = volume_->PeekInode(f.ino);
    const PageData& p0 = volume_->disk().PeekStable(inode->pages[0]);
    const PageData& p1 = volume_->disk().PeekStable(inode->pages[1]);
    EXPECT_EQ(p0[0], '.');
    EXPECT_EQ(p0[page_size_ - 5], 'A');
    EXPECT_EQ(p1[4], 'A');
    EXPECT_EQ(p1[page_size_ - 1], '.');
    // Working view still shows B's uncommitted bytes.
    EXPECT_EQ(store_->Read(f, {0, 1})[0], 'B');
  });
}

TEST_P(PageSizeSweep, IoCountIndependentOfPageSizeForOnePage) {
  Run([&] {
    FileId f = store_->CreateFile();
    stats_.Reset();
    store_->Write(f, Owner(1), 0, std::vector<uint8_t>(page_size_ / 2, 'x'));
    store_->CommitWriter(f, Owner(1));
    // One data flush + one inode write regardless of the page size.
    EXPECT_EQ(stats_.Get("io.writes.data"), 1);
    EXPECT_EQ(stats_.Get("io.writes.inode"), 1);
  });
}

INSTANTIATE_TEST_SUITE_P(PageSizes, PageSizeSweep,
                         ::testing::Values(32, 64, 128, 256, 1024),
                         [](const ::testing::TestParamInfo<int32_t>& info) {
                           return "p" + std::to_string(info.param);
                         });

// --- Pages-per-commit sweep: section 6.1's "no additional overhead for
// additional records in one file" identity ---

class PagesPerCommitSweep : public ::testing::TestWithParam<int> {};

TEST_P(PagesPerCommitSweep, DataWritesScaleInodeWritesDoNot) {
  const int pages = GetParam();
  Simulation sim;
  TraceLog trace;
  StatRegistry stats;
  auto disk = std::make_unique<Disk>(&sim, &stats, "d0", 4096, 64, Milliseconds(5));
  Volume volume(0, "v0", std::move(disk));
  BufferPool pool(64);
  FileStore store(&sim, &volume, &pool, &stats, &trace, "site0");
  sim.Spawn("test", [&] {
    FileId f = store.CreateFile();
    stats.Reset();
    LockOwner owner{kNoPid, TxnId{0, 0, 1}};
    for (int p = 0; p < pages; ++p) {
      store.Write(f, owner, p * 64, std::vector<uint8_t>(32, 'x'));
    }
    store.CommitWriter(f, owner);
    EXPECT_EQ(stats.Get("io.writes.data"), pages);
    EXPECT_EQ(stats.Get("io.writes.inode"), 1);  // One atomic switch.
  });
  sim.Run();
}

INSTANTIATE_TEST_SUITE_P(Pages, PagesPerCommitSweep, ::testing::Values(1, 2, 4, 8, 16, 32));

// --- Random interleaving sweep over (writer count, rounds) ---

class InterleavingSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(InterleavingSweep, CommittedStateMatchesModel) {
  auto [writers, rounds] = GetParam();
  constexpr int32_t kPageSize = 128;
  constexpr int kFileBytes = 512;
  Simulation sim(writers * 1000 + rounds);
  TraceLog trace;
  StatRegistry stats;
  auto disk = std::make_unique<Disk>(&sim, &stats, "d0", 4096, kPageSize, Milliseconds(2));
  Volume volume(0, "v0", std::move(disk));
  BufferPool pool(64);
  FileStore store(&sim, &volume, &pool, &stats, &trace, "site0");

  sim.Spawn("test", [&] {
    Rng rng(7 * writers + rounds);
    FileId f = store.CreateFile();
    std::vector<uint8_t> committed(kFileBytes, 0);
    store.Write(f, LockOwner{1000, kNoTxn}, 0, committed);
    store.CommitWriter(f, LockOwner{1000, kNoTxn});

    // Each writer owns a disjoint byte stripe (as the lock manager would
    // enforce); stripes interleave within shared pages.
    const int stripe = kFileBytes / writers;
    for (int round = 0; round < rounds; ++round) {
      struct Pending {
        LockOwner owner;
        std::vector<std::pair<int64_t, uint8_t>> bytes;
      };
      std::vector<Pending> pending;
      for (int w = 0; w < writers; ++w) {
        Pending p{LockOwner{static_cast<Pid>(w + 1), kNoTxn}, {}};
        int n = static_cast<int>(rng.Range(1, 3));
        for (int k = 0; k < n; ++k) {
          int64_t off = w * stripe + rng.Range(0, stripe - 6);
          uint8_t value = static_cast<uint8_t>(rng.Range(1, 255));
          std::vector<uint8_t> data(static_cast<size_t>(rng.Range(1, 6)), value);
          store.Write(f, p.owner, off, data);
          for (size_t i = 0; i < data.size(); ++i) {
            p.bytes.push_back({off + static_cast<int64_t>(i), value});
          }
        }
        pending.push_back(std::move(p));
      }
      // Resolve in random order, randomly committing or aborting.
      while (!pending.empty()) {
        size_t pick = rng.Below(pending.size());
        Pending p = pending[pick];
        pending.erase(pending.begin() + pick);
        if (rng.Chance(0.6)) {
          store.CommitWriter(f, p.owner);
          for (auto& [off, value] : p.bytes) {
            committed[off] = value;
          }
        } else {
          store.AbortWriter(f, p.owner);
        }
      }
      auto view = store.Read(f, {0, kFileBytes});
      ASSERT_EQ(view, committed) << "writers=" << writers << " round=" << round;
      // Stable state matches too (read through a fresh store would see it).
      ASSERT_EQ(store.CommittedSize(f), kFileBytes);
    }
  });
  sim.Run();
  EXPECT_EQ(volume.double_frees(), 0);
}

INSTANTIATE_TEST_SUITE_P(Mix, InterleavingSweep,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(5, 15)));

}  // namespace
}  // namespace locus
