// Tests for the debit/credit workload driver, doubling as another
// conservation property check on the full system.

#include "src/workload/debit_credit.h"

#include <gtest/gtest.h>

namespace locus {
namespace {

TEST(DebitCreditWorkload, HelpersRoundTrip) {
  std::string record = DebitCreditWorkload::FormatBalance(12345);
  ASSERT_EQ(record.size(), static_cast<size_t>(DebitCreditWorkload::kRecordBytes));
  EXPECT_EQ(DebitCreditWorkload::ParseBalance({record.begin(), record.end()}), 12345);
  std::string negative = DebitCreditWorkload::FormatBalance(-7);
  EXPECT_EQ(DebitCreditWorkload::ParseBalance({negative.begin(), negative.end()}), -7);
  EXPECT_EQ(DebitCreditWorkload::BranchPath(3), "/branch3");
}

TEST(DebitCreditWorkload, ConservesMoneyTwoSites) {
  System system(2, SystemOptions{.seed = 7});
  DebitCreditConfig config;
  config.branches = 2;
  config.accounts_per_branch = 6;
  config.tellers = 4;
  config.transfers_per_teller = 6;
  config.seed = 7;
  DebitCreditWorkload workload(&system, config);
  DebitCreditResults results = workload.Execute();
  EXPECT_GT(results.committed, 0);
  EXPECT_TRUE(results.conserved())
      << results.audited_total << " != " << results.expected_total;
  EXPECT_GT(results.makespan, 0);
  EXPECT_GT(results.throughput_tps(), 0.0);
  EXPECT_EQ(system.sim().blocked_process_count(), 0);
}

TEST(DebitCreditWorkload, FullyLocalModeStaysWithinBranch) {
  System system(2, SystemOptions{.seed = 9});
  DebitCreditConfig config;
  config.branches = 2;
  config.accounts_per_branch = 6;
  config.tellers = 2;
  config.transfers_per_teller = 6;
  config.local_fraction = 1.0;
  config.seed = 9;
  DebitCreditWorkload workload(&system, config);
  DebitCreditResults results = workload.Execute();
  EXPECT_TRUE(results.conserved());
  // Fully local transfers commit via single-participant two-phase commit;
  // per-branch totals are individually conserved too.
  // (Total conservation implies it here since transfers never cross.)
}

TEST(DebitCreditWorkload, DeterministicForFixedSeed) {
  auto run = [](uint64_t seed) {
    System system(2, SystemOptions{.seed = seed});
    DebitCreditConfig config;
    config.branches = 2;
    config.accounts_per_branch = 4;
    config.tellers = 3;
    config.transfers_per_teller = 5;
    config.seed = seed;
    DebitCreditWorkload workload(&system, config);
    DebitCreditResults r = workload.Execute();
    return std::make_tuple(r.committed, r.aborted_attempts, r.makespan);
  };
  EXPECT_EQ(run(3), run(3));
}

}  // namespace
}  // namespace locus
