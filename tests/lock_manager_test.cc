// LockManager tests: FIFO queueing, cancellation, release-driven grants,
// append-range recomputation, and wait-for-graph export.

#include "src/lock/lock_manager.h"

#include <gtest/gtest.h>

#include <vector>

namespace locus {
namespace {

const FileId kFileA{0, 1};
const FileId kFileB{0, 2};
const TxnId kT1{0, 0, 1};
const TxnId kT2{0, 0, 2};
const TxnId kT3{0, 0, 3};

LockOwner Proc(Pid pid) { return LockOwner{pid, kNoTxn}; }
LockOwner Txn(const TxnId& t) { return LockOwner{kNoPid, t}; }

class LockManagerTest : public ::testing::Test {
 protected:
  LockManagerTest() : manager_(&trace_, &stats_, "site0") {}

  // Issues a request and records its outcome in `outcomes` by index.
  void Request(const FileId& file, ByteRange range, LockOwner owner, LockMode mode,
               bool wait, int tag) {
    manager_.Request(file, range, owner, mode, false, wait,
                     [this, tag](bool ok, ByteRange granted) {
                       outcomes_.push_back({tag, ok, granted});
                     });
  }

  struct Outcome {
    int tag;
    bool ok;
    ByteRange granted;
  };

  TraceLog trace_;
  StatRegistry stats_;
  LockManager manager_;
  std::vector<Outcome> outcomes_;
};

TEST_F(LockManagerTest, ImmediateGrantWhenCompatible) {
  Request(kFileA, {0, 10}, Proc(1), LockMode::kShared, false, 1);
  Request(kFileA, {0, 10}, Proc(2), LockMode::kShared, false, 2);
  ASSERT_EQ(outcomes_.size(), 2u);
  EXPECT_TRUE(outcomes_[0].ok);
  EXPECT_TRUE(outcomes_[1].ok);
}

TEST_F(LockManagerTest, NoWaitConflictDeniedImmediately) {
  Request(kFileA, {0, 10}, Proc(1), LockMode::kExclusive, false, 1);
  Request(kFileA, {5, 10}, Proc(2), LockMode::kExclusive, false, 2);
  ASSERT_EQ(outcomes_.size(), 2u);
  EXPECT_TRUE(outcomes_[0].ok);
  EXPECT_FALSE(outcomes_[1].ok);
  EXPECT_EQ(stats_.Get("lock.denied"), 1);
}

TEST_F(LockManagerTest, WaiterGrantedOnUnlockInFifoOrder) {
  Request(kFileA, {0, 10}, Proc(1), LockMode::kExclusive, false, 1);
  Request(kFileA, {0, 10}, Proc(2), LockMode::kExclusive, true, 2);
  Request(kFileA, {0, 10}, Proc(3), LockMode::kExclusive, true, 3);
  EXPECT_EQ(manager_.waiting_count(), 2);
  ASSERT_EQ(outcomes_.size(), 1u);

  manager_.Unlock(kFileA, {0, 10}, Proc(1));
  // Proc 2 (first in line) gets it; proc 3 still waits.
  ASSERT_EQ(outcomes_.size(), 2u);
  EXPECT_EQ(outcomes_[1].tag, 2);
  EXPECT_TRUE(outcomes_[1].ok);
  EXPECT_EQ(manager_.waiting_count(), 1);

  manager_.Unlock(kFileA, {0, 10}, Proc(2));
  ASSERT_EQ(outcomes_.size(), 3u);
  EXPECT_EQ(outcomes_[2].tag, 3);
}

TEST_F(LockManagerTest, ReleaseTransactionWakesWaiters) {
  Request(kFileA, {0, 10}, Txn(kT1), LockMode::kExclusive, false, 1);
  Request(kFileA, {0, 10}, Proc(2), LockMode::kShared, true, 2);
  EXPECT_EQ(outcomes_.size(), 1u);
  manager_.ReleaseTransaction(kT1);
  ASSERT_EQ(outcomes_.size(), 2u);
  EXPECT_TRUE(outcomes_[1].ok);
}

TEST_F(LockManagerTest, CancelWaitersFiresCallbackWithFalse) {
  Request(kFileA, {0, 10}, Proc(1), LockMode::kExclusive, false, 1);
  Request(kFileA, {0, 10}, Txn(kT2), LockMode::kExclusive, true, 2);
  manager_.CancelWaiters(Txn(kT2));
  ASSERT_EQ(outcomes_.size(), 2u);
  EXPECT_FALSE(outcomes_[1].ok);
  EXPECT_EQ(manager_.waiting_count(), 0);
  // The holder's unlock no longer grants anything to the cancelled waiter.
  manager_.Unlock(kFileA, {0, 10}, Proc(1));
  EXPECT_EQ(outcomes_.size(), 2u);
}

TEST_F(LockManagerTest, AbortedTransactionReleaseCancelsItsOwnWaits) {
  Request(kFileA, {0, 10}, Proc(1), LockMode::kExclusive, false, 1);
  Request(kFileA, {0, 10}, Txn(kT1), LockMode::kExclusive, true, 2);
  manager_.ReleaseTransaction(kT1);  // Abort while waiting.
  ASSERT_EQ(outcomes_.size(), 2u);
  EXPECT_FALSE(outcomes_[1].ok);
}

TEST_F(LockManagerTest, WaitForEdgesReflectBlockingOwners) {
  Request(kFileA, {0, 10}, Txn(kT1), LockMode::kExclusive, false, 1);
  Request(kFileA, {0, 10}, Txn(kT2), LockMode::kExclusive, true, 2);
  Request(kFileB, {0, 10}, Txn(kT2), LockMode::kExclusive, false, 3);
  Request(kFileB, {0, 10}, Txn(kT3), LockMode::kShared, true, 4);
  auto edges = manager_.WaitForEdges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].waiter.txn, kT2);
  EXPECT_EQ(edges[0].holder.txn, kT1);
  EXPECT_EQ(edges[1].waiter.txn, kT3);
  EXPECT_EQ(edges[1].holder.txn, kT2);
}

TEST_F(LockManagerTest, AppendRangeRecomputedAtGrantTime) {
  int64_t eof = 0;  // Simulated end-of-file that grows.
  auto recompute = [&eof] { return ByteRange{eof, 8}; };

  manager_.Request(kFileA, {}, Proc(1), LockMode::kExclusive, false, true,
                   [this](bool ok, ByteRange r) { outcomes_.push_back({1, ok, r}); },
                   recompute);
  ASSERT_TRUE(outcomes_[0].ok);
  EXPECT_EQ(outcomes_[0].granted, (ByteRange{0, 8}));

  // Second appender queues while the first holds [0,8).
  manager_.Request(kFileA, {}, Proc(2), LockMode::kExclusive, false, true,
                   [this](bool ok, ByteRange r) { outcomes_.push_back({2, ok, r}); },
                   recompute);
  EXPECT_EQ(manager_.waiting_count(), 1);

  // The first appender writes 8 bytes (EOF moves) and unlocks.
  eof = 8;
  manager_.Unlock(kFileA, {0, 8}, Proc(1));
  ASSERT_EQ(outcomes_.size(), 2u);
  EXPECT_TRUE(outcomes_[1].ok);
  // Granted at the NEW end of file, not the stale one.
  EXPECT_EQ(outcomes_[1].granted, (ByteRange{8, 8}));
}

TEST_F(LockManagerTest, LockTableHandoffForServiceMigration) {
  Request(kFileA, {0, 10}, Txn(kT1), LockMode::kExclusive, false, 1);
  LockList moved = manager_.TakeFileLocks(kFileA);
  EXPECT_EQ(moved.entries().size(), 1u);
  EXPECT_EQ(manager_.Find(kFileA), nullptr);

  LockManager other(&trace_, &stats_, "site1");
  other.InstallFileLocks(kFileA, std::move(moved));
  ASSERT_NE(other.Find(kFileA), nullptr);
  EXPECT_FALSE(other.Find(kFileA)->CanGrant({0, 10}, Proc(9), LockMode::kShared));
}

TEST_F(LockManagerTest, AccessChecksDelegateToLists) {
  Request(kFileA, {0, 10}, Proc(1), LockMode::kExclusive, false, 1);
  EXPECT_FALSE(manager_.MayRead(kFileA, {0, 5}, Proc(2)));
  EXPECT_TRUE(manager_.MayRead(kFileA, {0, 5}, Proc(1)));
  EXPECT_TRUE(manager_.MayRead(kFileB, {0, 5}, Proc(2)));  // Unknown file: free.
  EXPECT_TRUE(manager_.Holds(kFileA, {0, 10}, Proc(1), LockMode::kExclusive));
  EXPECT_FALSE(manager_.Holds(kFileB, {0, 10}, Proc(1), LockMode::kExclusive));
}

TEST_F(LockManagerTest, ClearDropsEverything) {
  Request(kFileA, {0, 10}, Proc(1), LockMode::kExclusive, false, 1);
  Request(kFileA, {0, 10}, Proc(2), LockMode::kExclusive, true, 2);
  manager_.Clear();
  EXPECT_EQ(manager_.waiting_count(), 0);
  EXPECT_EQ(manager_.Find(kFileA), nullptr);
}

TEST_F(LockManagerTest, TransactionsWithLocksEnumerates) {
  Request(kFileA, {0, 10}, Txn(kT1), LockMode::kShared, false, 1);
  Request(kFileB, {0, 10}, Txn(kT2), LockMode::kShared, false, 2);
  Request(kFileB, {20, 10}, Proc(5), LockMode::kShared, false, 3);
  auto txns = manager_.TransactionsWithLocks();
  EXPECT_EQ(txns.size(), 2u);
}

}  // namespace
}  // namespace locus
