// Transaction semantics tests: simple nesting (section 2), atomic commit and
// abort, retained-lock visibility, the section 3.3 serializability scenario,
// rule-2 adoption end to end, and multi-process/multi-site transactions.

#include <gtest/gtest.h>

#include <string>

#include "src/locus/system.h"

namespace locus {
namespace {

std::string Text(const std::vector<uint8_t>& b) { return {b.begin(), b.end()}; }

class TxnTest : public ::testing::Test {
 protected:
  TxnTest() : system_(3) {}

  void RunAll() {
    system_.Run();
    EXPECT_EQ(system_.sim().blocked_process_count(), 0) << "workload deadlocked";
  }

  // Creates /f with `content` committed, outside any transaction.
  static void MakeFile(Syscalls& sys, const std::string& path, const std::string& content) {
    ASSERT_EQ(sys.Creat(path), Err::kOk);
    auto fd = sys.Open(path, {.read = true, .write = true});
    ASSERT_TRUE(fd.ok());
    ASSERT_EQ(sys.WriteString(fd.value, content), Err::kOk);
    ASSERT_EQ(sys.Close(fd.value), Err::kOk);
  }

  // Reads `path`, retrying briefly: right after the commit point, retained
  // locks are still being released by the asynchronous second phase of
  // commit (section 4.2), so an immediate read can be denied.
  static std::string ReadFile(Syscalls& sys, const std::string& path, int64_t n) {
    for (int attempt = 0; attempt < 20; ++attempt) {
      auto fd = sys.Open(path, {});
      EXPECT_TRUE(fd.ok());
      auto data = sys.Read(fd.value, n);
      sys.Close(fd.value);
      if (data.ok()) {
        return Text(data.value);
      }
      sys.Compute(Milliseconds(50));
    }
    ADD_FAILURE() << "ReadFile(" << path << ") kept failing";
    return "";
  }

  System system_;
};

TEST_F(TxnTest, CommitMakesWritesDurableAndVisible) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    MakeFile(sys, "/f", "original--");
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    EXPECT_TRUE(sys.InTransaction());
    auto fd = sys.Open("/f", {.read = true, .write = true});
    ASSERT_EQ(sys.WriteString(fd.value, "txn-update"), Err::kOk);
    sys.Close(fd.value);
    ASSERT_EQ(sys.EndTrans(), Err::kOk);
    EXPECT_FALSE(sys.InTransaction());
    EXPECT_EQ(ReadFile(sys, "/f", 10), "txn-update");
  });
  RunAll();
  EXPECT_EQ(system_.stats().Get("txn.committed"), 1);
}

TEST_F(TxnTest, AbortRollsBackEverything) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    MakeFile(sys, "/f", "keep me!!");
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    auto fd = sys.Open("/f", {.read = true, .write = true});
    ASSERT_EQ(sys.WriteString(fd.value, "discarded"), Err::kOk);
    sys.Close(fd.value);
    ASSERT_EQ(sys.AbortTrans(), Err::kOk);
    EXPECT_FALSE(sys.InTransaction());
    EXPECT_EQ(ReadFile(sys, "/f", 9), "keep me!!");
  });
  RunAll();
}

TEST_F(TxnTest, SimpleNestingCommitsOnlyAtOutermostEnd) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    MakeFile(sys, "/f", "0000");
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    auto fd = sys.Open("/f", {.read = true, .write = true});
    sys.WriteString(fd.value, "1111");

    // A "database subsystem" call that brackets its own critical section.
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    sys.Seek(fd.value, 0);
    sys.WriteString(fd.value, "2222");
    ASSERT_EQ(sys.EndTrans(), Err::kOk);  // Inner end: must NOT commit.
    EXPECT_TRUE(sys.InTransaction());
    EXPECT_EQ(system_.stats().Get("txn.committed"), 0);

    sys.Close(fd.value);
    ASSERT_EQ(sys.EndTrans(), Err::kOk);  // Outer end commits.
    EXPECT_EQ(system_.stats().Get("txn.committed"), 1);
    EXPECT_EQ(ReadFile(sys, "/f", 4), "2222");
  });
  RunAll();
}

TEST_F(TxnTest, EndOrAbortOutsideTransactionFails) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    EXPECT_EQ(sys.EndTrans(), Err::kNoTransaction);
    EXPECT_EQ(sys.AbortTrans(), Err::kNoTransaction);
  });
  RunAll();
}

TEST_F(TxnTest, RetainedLocksBlockOthersUntilCommit) {
  // Explicitly unlocked transaction locks stay retained (rule 1); an
  // UNRELATED process (forked before BeginTrans, so not a member) gets the
  // lock only after commit.
  SimTime other_granted_at = 0;
  SimTime commit_at = 0;
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    MakeFile(sys, "/f", "xxxxxxxxxx");
    // Independent contender: forked outside the transaction.
    sys.Fork(0, [&](Syscalls& other) {
      other.Compute(Milliseconds(60));  // Let the transaction take its lock.
      EXPECT_FALSE(other.InTransaction());
      auto ofd = other.Open("/f", {.read = true, .write = true});
      ASSERT_EQ(other.Lock(ofd.value, 10, LockOp::kExclusive, {.wait = true}).err, Err::kOk);
      other_granted_at = other.system().sim().Now();
      other.Close(ofd.value);
    });

    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    auto fd = sys.Open("/f", {.read = true, .write = true});
    ASSERT_EQ(sys.Lock(fd.value, 10, LockOp::kExclusive).err, Err::kOk);
    sys.WriteString(fd.value, "transacted");
    sys.Seek(fd.value, 0);
    // Explicit unlock: the lock is retained, not released (section 3.1).
    ASSERT_EQ(sys.Lock(fd.value, 10, LockOp::kUnlock).err, Err::kOk);
    sys.Compute(Milliseconds(200));  // Contender queues against the retained lock.
    sys.Close(fd.value);
    ASSERT_EQ(sys.EndTrans(), Err::kOk);
    commit_at = sys.system().sim().Now();
    sys.WaitChildren();
  });
  RunAll();
  EXPECT_GT(commit_at, Milliseconds(200));
  EXPECT_GE(other_granted_at, commit_at);
}

TEST_F(TxnTest, Section33ScenarioRule2AdoptionPreservesConsistency) {
  // The program fragments from section 3.3: a non-transaction writes x[1]
  // and unlocks without committing; a transaction reads x[1] and writes
  // x[2] := x[1]. Rule 2 must commit x[1] with the transaction so that
  // x[1] == x[2] regardless of what the non-transaction does afterwards.
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    MakeFile(sys, "/x", std::string(2, 'A'));

    // Non-transaction program: write x[0] := 'C', unlock without commit.
    auto fd = sys.Open("/x", {.read = true, .write = true});
    ASSERT_EQ(sys.Lock(fd.value, 1, LockOp::kExclusive).err, Err::kOk);
    ASSERT_EQ(sys.WriteString(fd.value, "C"), Err::kOk);
    sys.Seek(fd.value, 0);
    ASSERT_EQ(sys.Lock(fd.value, 1, LockOp::kUnlock).err, Err::kOk);
    // NOTE: no commit — the datum is modified-but-uncommitted.

    // Transaction: t := x[0]; x[1] := t.
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    sys.Seek(fd.value, 0);
    auto t = sys.Read(fd.value, 1);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(Text(t.value), "C");  // Uncommitted data is visible (section 5).
    ASSERT_EQ(sys.Write(fd.value, t.value), Err::kOk);  // x[1] := t at offset 1.
    sys.Close(fd.value);
    ASSERT_EQ(sys.EndTrans(), Err::kOk);

    // Rule 2: x[0] was committed together with the transaction even though
    // the transaction never wrote it.
    EXPECT_EQ(ReadFile(sys, "/x", 2), "CC");
  });
  RunAll();
  EXPECT_GE(system_.stats().Get("fs.rule2_adoptions"), 1);
  // Durably committed:
  Kernel& k = system_.kernel(0);
  const CatalogEntry* entry = system_.catalog().Lookup("/x");
  FileStore* store = k.StoreFor(entry->replicas[0].file.volume);
  EXPECT_EQ(store->CommittedSize(entry->replicas[0].file), 2);
}

TEST_F(TxnTest, PreTransactionLocksAreNotPartOfTransaction) {
  // Section 3.4, second mechanism: locks acquired before BeginTrans are not
  // converted; unlocking them inside the transaction releases them for real.
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    MakeFile(sys, "/pre", "0123456789");
    auto fd = sys.Open("/pre", {.read = true, .write = true});
    ASSERT_EQ(sys.Lock(fd.value, 10, LockOp::kExclusive).err, Err::kOk);
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    // Use the pre-locked resource inside the transaction: allowed, no
    // self-conflict.
    auto data = sys.Read(fd.value, 5);
    ASSERT_TRUE(data.ok());
    // Unlock inside the transaction: dropped immediately, not retained.
    sys.Seek(fd.value, 0);
    ASSERT_EQ(sys.Lock(fd.value, 10, LockOp::kUnlock).err, Err::kOk);
    // An unrelated owner could now take the exclusive lock — the pre-txn
    // lock really was released, not retained. (The transaction still holds
    // an implicit shared lock from the read above, so shared is grantable
    // but exclusive is not; check against the shared mode.)
    const CatalogEntry* entry = system_.catalog().Lookup("/pre");
    const LockList* list = system_.kernel(0).lock_manager().Find(entry->replicas[0].file);
    ASSERT_NE(list, nullptr);
    LockOwner stranger{999, kNoTxn};
    EXPECT_TRUE(list->CanGrant({5, 5}, stranger, LockMode::kShared));
    // Only the implicit shared read lock on [0,5) remains; beyond it even
    // exclusive is free.
    EXPECT_TRUE(list->CanGrant({5, 5}, stranger, LockMode::kExclusive));
    sys.Close(fd.value);
    sys.EndTrans();
  });
  RunAll();
}

TEST_F(TxnTest, NonTransactionLockEscapesTwoPhaseDiscipline) {
  // Section 3.4, first mechanism: a non-transaction lock taken inside a
  // transaction can be released mid-transaction.
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    MakeFile(sys, "/catalog", "catalog-data");
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    auto fd = sys.Open("/catalog", {.read = true, .write = true});
    ASSERT_EQ(sys.Lock(fd.value, 12, LockOp::kExclusive, {.non_transaction = true}).err,
              Err::kOk);
    // While held it obeys Figure 1 against strangers.
    const CatalogEntry* entry = system_.catalog().Lookup("/catalog");
    const LockList* list = system_.kernel(0).lock_manager().Find(entry->replicas[0].file);
    ASSERT_NE(list, nullptr);
    LockOwner stranger{999, kNoTxn};
    EXPECT_FALSE(list->CanGrant({0, 12}, stranger, LockMode::kExclusive));
    sys.Seek(fd.value, 0);
    ASSERT_EQ(sys.Lock(fd.value, 12, LockOp::kUnlock).err, Err::kOk);
    // Released mid-transaction: a stranger could lock it now.
    EXPECT_TRUE(list->CanGrant({0, 12}, stranger, LockMode::kExclusive));
    sys.Close(fd.value);
    sys.EndTrans();
  });
  RunAll();
}

TEST_F(TxnTest, MultiFileMultiSiteTransactionIsAtomic) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    MakeFile(sys, "/a", "site0!");
    // Create /b at site 1 via a child there.
    sys.Fork(1, [](Syscalls& c) { MakeFile(c, "/b", "site1!"); });
    sys.WaitChildren();

    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    auto fa = sys.Open("/a", {.read = true, .write = true});
    auto fb = sys.Open("/b", {.read = true, .write = true});
    ASSERT_EQ(sys.WriteString(fa.value, "newAAA"), Err::kOk);
    ASSERT_EQ(sys.WriteString(fb.value, "newBBB"), Err::kOk);
    sys.Close(fa.value);
    sys.Close(fb.value);
    ASSERT_EQ(sys.EndTrans(), Err::kOk);
    EXPECT_EQ(ReadFile(sys, "/a", 6), "newAAA");
    EXPECT_EQ(ReadFile(sys, "/b", 6), "newBBB");
  });
  RunAll();
  // Two participant sites, each with a prepare log write.
  EXPECT_GE(system_.stats().Get("io.writes.prepare_log"), 2);
  EXPECT_EQ(system_.stats().Get("io.writes.coordinator_log"), 1);
  EXPECT_EQ(system_.stats().Get("io.writes.commit_mark"), 1);
}

TEST_F(TxnTest, DistributedChildrenParticipateInTransaction) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    MakeFile(sys, "/dist", std::string(20, '-'));
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    // Children at two sites each write a disjoint record of the same file.
    for (int i = 0; i < 2; ++i) {
      auto r = sys.Fork(i + 1, [i](Syscalls& child) {
        EXPECT_TRUE(child.InTransaction());  // Inherited membership.
        auto fd = child.Open("/dist", {.read = true, .write = true});
        ASSERT_TRUE(fd.ok());
        child.Seek(fd.value, i * 10);
        ASSERT_EQ(child.WriteString(fd.value, "child" + std::to_string(i)), Err::kOk);
        child.Close(fd.value);
      });
      ASSERT_TRUE(r.ok());
    }
    sys.WaitChildren();
    ASSERT_EQ(sys.EndTrans(), Err::kOk);
    EXPECT_EQ(ReadFile(sys, "/dist", 16), "child0----child1");
  });
  RunAll();
  EXPECT_GE(system_.stats().Get("txn.merges"), 2);  // File-lists merged.
}

TEST_F(TxnTest, ChildLocksAreSharedWithParent) {
  // Section 3.1: if a child locks a record exclusively, the parent may too.
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    MakeFile(sys, "/shared-lock", "0123456789");
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    auto fd = sys.Open("/shared-lock", {.read = true, .write = true});
    sys.Fork(0, [](Syscalls& child) {
      auto cfd = child.Open("/shared-lock", {.read = true, .write = true});
      ASSERT_EQ(child.Lock(cfd.value, 10, LockOp::kExclusive).err, Err::kOk);
      child.Close(cfd.value);
    });
    sys.WaitChildren();
    // Parent can acquire the same record exclusively: same transaction.
    ASSERT_EQ(sys.Lock(fd.value, 10, LockOp::kExclusive, {.wait = false}).err, Err::kOk);
    sys.Close(fd.value);
    ASSERT_EQ(sys.EndTrans(), Err::kOk);
  });
  RunAll();
}

TEST_F(TxnTest, AbortCascadeKillsMembers) {
  bool member_finished = false;
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    MakeFile(sys, "/cascade", "vvvvvvvvvv");
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    sys.Fork(1, [&](Syscalls& child) {
      auto fd = child.Open("/cascade", {.read = true, .write = true});
      child.WriteString(fd.value, "doomed");
      // Loop "forever": only the abort cascade can stop this member.
      for (int i = 0; i < 10000; ++i) {
        child.Compute(Milliseconds(10));
      }
      member_finished = true;
    });
    sys.Compute(Milliseconds(100));
    ASSERT_EQ(sys.AbortTrans(), Err::kOk);
    EXPECT_FALSE(sys.InTransaction());
    // Data rolled back.
    sys.Compute(Milliseconds(200));
    EXPECT_EQ(ReadFile(sys, "/cascade", 10), "vvvvvvvvvv");
  });
  RunAll();
  EXPECT_FALSE(member_finished);
  EXPECT_GE(system_.stats().Get("proc.killed"), 1);
}

TEST_F(TxnTest, TransactionSurvivesTopLevelMigration) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    MakeFile(sys, "/roam", "##########");
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    auto fd = sys.Open("/roam", {.read = true, .write = true});
    ASSERT_EQ(sys.WriteString(fd.value, "before"), Err::kOk);
    ASSERT_EQ(sys.Migrate(2), Err::kOk);  // Mid-transaction migration.
    sys.Seek(fd.value, 6);
    ASSERT_EQ(sys.WriteString(fd.value, "afte"), Err::kOk);
    sys.Close(fd.value);
    ASSERT_EQ(sys.EndTrans(), Err::kOk);  // Commit coordinated from site 2.
    EXPECT_EQ(ReadFile(sys, "/roam", 10), "beforeafte");
  });
  RunAll();
  EXPECT_EQ(system_.stats().Get("txn.committed"), 1);
  EXPECT_EQ(system_.stats().Get("proc.migrations"), 1);
}

TEST_F(TxnTest, FileListMergeChasesMigratingTopLevel) {
  // Section 4.1's race: a child's file-list arrives while the top-level
  // process is migrating; the merge must be retried and eventually land.
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    MakeFile(sys, "/race", std::string(30, '.'));
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    // Child does work at site 1, then exits (sending its file-list while the
    // parent is bouncing between sites).
    sys.Fork(1, [](Syscalls& child) {
      auto fd = child.Open("/race", {.read = true, .write = true});
      child.Seek(fd.value, 10);
      ASSERT_EQ(child.WriteString(fd.value, "childwrite"), Err::kOk);
      child.Close(fd.value);
    });
    // Keep migrating while the child exits.
    for (SiteId s : {1, 2, 0, 1, 2}) {
      ASSERT_EQ(sys.Migrate(s), Err::kOk);
    }
    sys.WaitChildren();
    ASSERT_EQ(sys.EndTrans(), Err::kOk);
    EXPECT_EQ(ReadFile(sys, "/race", 20).substr(10), "childwrite");
  });
  RunAll();
  EXPECT_EQ(system_.stats().Get("txn.committed"), 1);
}

TEST_F(TxnTest, ReadOnlyTransactionCommitsTrivially) {
  system_.Spawn(0, "prog", [&](Syscalls& sys) {
    ASSERT_EQ(sys.BeginTrans(), Err::kOk);
    ASSERT_EQ(sys.EndTrans(), Err::kOk);
  });
  RunAll();
  EXPECT_EQ(system_.stats().Get("txn.committed_trivial"), 1);
  EXPECT_EQ(system_.stats().Get("io.writes.coordinator_log"), 0);
}

}  // namespace
}  // namespace locus
